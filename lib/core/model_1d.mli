(** The traditional 1-D TTSV model — the paper's baseline.

    Following the references the paper compares against ([1], [7]–[9]),
    the TTSV is a single vertical lumped resistor per plane, proportional
    to its length and inversely proportional to its metal cross-section;
    heat flows only vertically.  Per plane the TTSV resistor sits in
    parallel with the surrounding stack resistance, the planes form a
    series chain above R_s, and heat q_i enters between planes.

    Deliberately missing (this is the point of the paper): the lateral
    liner path (R3/R6/R9) and the liner geometry entirely — the model's
    prediction is independent of the liner thickness t_L (flat curve in
    Fig. 5) and of how one large TTSV is divided into many small ones at
    constant metal area (flat curve in Fig. 7). *)

type result = {
  t0 : float;  (** rise below plane 1 (above R_s), K *)
  plane_tops : float array;  (** rise at the top of each plane, K *)
  plane_resistances : float array;  (** the per-plane parallel combinations, K/W *)
}

val solve : Ttsv_geometry.Stack.t -> result
(** [solve stack] evaluates the chain with the stack's heat inputs.
    No fitting coefficients exist in this model. *)

val solve_with_heats : Ttsv_geometry.Stack.t -> Ttsv_numerics.Vec.t -> result
(** Like {!solve} with explicit per-plane heats. *)

val max_rise : result -> float
(** Max ΔT — the top of the chain. *)
