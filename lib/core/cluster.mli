(** Dividing one TTSV into a cluster of thinner TTSVs (§IV-D, eq. 22).

    A TTSV of radius r₀ is replaced by [n] TTSVs of radius r₀/√n so the
    total metal cross-section is unchanged.  Per the paper, the vertical
    resistances are therefore unchanged (R'_i = R_i for i ∉ {3, 6, 9}),
    while the lateral liner resistances shrink because the total liner
    surface grows:

    R'₃ = ln((t_L·√n + r₀)/r₀) / (2·n·π·k₂·k_L·span)   (eq. 22)

    and similarly for R'₆, R'₉. *)

val divided_resistances : ?coeffs:Coefficients.t -> Ttsv_geometry.Stack.t -> int -> Resistances.t
(** [divided_resistances ?coeffs stack n] evaluates eqs. 7–16 for the
    stack's TTSV, then rewrites the liner entries per eq. 22 for a
    division into [n] parts.  [n = 1] returns the plain resistances.
    Raises [Invalid_argument] for [n < 1]. *)

val solve : ?coeffs:Coefficients.t -> Ttsv_geometry.Stack.t -> int -> Model_a.result
(** [solve ?coeffs stack n] runs Model A on {!divided_resistances}. *)

val solve_naive : ?coeffs:Coefficients.t -> Ttsv_geometry.Stack.t -> int -> Model_a.result
(** Ablation variant: instead of eq. 22, rebuilds the unit cell with the
    TTSV radius set to r₀/√n and vertical/lateral resistances recomputed
    from first principles with all [n] vias in parallel (including the
    larger displaced silicon area).  Comparing against {!solve} isolates
    what eq. 22's "vertical resistances unchanged" approximation costs. *)

val max_rise_series : ?coeffs:Coefficients.t -> Ttsv_geometry.Stack.t -> int list -> float list
(** [max_rise_series ?coeffs stack ns] maps {!solve} + {!Model_a.max_rise}
    over a division series — the Fig. 7 workload. *)
