type t = { ambient : float; resistance : float }

let make ?(ambient = 25.) ~resistance () =
  if resistance < 0. then invalid_arg "Package.make: resistance must be nonnegative";
  { ambient; resistance }

let of_parts ?ambient ~spreader ~sink_to_air () =
  if spreader < 0. || sink_to_air < 0. then
    invalid_arg "Package.of_parts: resistances must be nonnegative";
  make ?ambient ~resistance:(spreader +. sink_to_air) ()

let sink_temperature pkg ~total_power = pkg.ambient +. (pkg.resistance *. total_power)

let junction_temperature pkg ~total_power ~model_rise =
  sink_temperature pkg ~total_power +. model_rise

let max_power_for_junction pkg ~model_rise_per_watt ~junction_limit =
  if junction_limit <= pkg.ambient then
    invalid_arg "Package.max_power_for_junction: junction limit below ambient";
  if model_rise_per_watt < 0. then
    invalid_arg "Package.max_power_for_junction: negative rise per watt";
  (junction_limit -. pkg.ambient) /. (pkg.resistance +. model_rise_per_watt)

let required_resistance pkg ~total_power ~model_rise ~junction_limit =
  if total_power <= 0. then
    invalid_arg "Package.required_resistance: power must be positive";
  (junction_limit -. pkg.ambient -. model_rise) /. total_power
