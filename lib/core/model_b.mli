(** Model B — the paper's distributed π-segment TTSV model (§III).

    Each plane is discretized into [n_j = n_Dj + n_Sj] π-segments —
    [n_Sj] across the bond + substrate part and [n_Dj] across the ILD —
    each segment contributing a bulk node and (where the TTSV runs) a
    metal node, a vertical bulk resistor, a vertical metal resistor
    [R_Mj / n_j], and a lateral liner rung [n_j · R_Lj] (eq. 21).  Heat
    enters as [q_j / n_Dj] at every ILD bulk node (eq. 20).  No fitting
    coefficients are used.

    The resulting KCL system A·T = b (eq. 19) is assembled directly into
    a half-bandwidth-2 banded matrix (bulk and metal nodes interleaved)
    and solved in O(n): the library's equivalent of the paper's sparse
    solve, which lets Table I's largest configuration run in
    milliseconds.

    Faithfulness notes (documented deviations, both more physical than
    the lumped alternative):
    - in the top plane the TTSV stops at the top of the substrate, so
      its ILD segments carry no metal column and the metal/rung budget
      is distributed over the substrate segments only (this reproduces
      the lumped R8 + R9 series branch when [n = 1]);
    - a requested top-plane segmentation with no substrate segment is
      bumped to one substrate segment so the TTSV remains connected. *)

type segmentation = (int * int) array
(** Per plane, bottom-up: [(n_ild, n_si)] — ILD segments and
    bond+substrate segments.  For the first plane the "substrate" part
    is the TSV extension [l_ext]. *)

type result = {
  t0 : float;  (** rise at the TTSV foot node (above R_s), K *)
  temps : float array;  (** every nodal rise, assembly order *)
  bulk_profile : (float * float) array;
      (** (z, ΔT) along the bulk column, z measured upward in metres from
          the TSV foot level; one sample per segment top *)
  tsv_profile : (float * float) array;  (** (z, ΔT) along the metal column *)
  nodes : int;  (** system order 2·n_A (+1 for T0) actually assembled *)
  segmentation : segmentation;  (** the segmentation actually used *)
}

val segmentation_for : Ttsv_geometry.Stack.t -> counts:int array -> segmentation
(** [segmentation_for stack ~counts] splits each plane's requested
    segment count between its ILD and substrate parts proportionally to
    their thicknesses (at least one segment each when the count allows;
    the top plane always keeps a substrate segment).  [counts] must have
    one positive entry per plane. *)

val paper_segmentation : Ttsv_geometry.Stack.t -> int -> segmentation
(** [paper_segmentation stack n] is the paper's "Model B (n)"
    convention: [max 1 (n/10)] segments in the first plane and [n] in
    every other plane (Table I's (1,1), (2,20), (10,100), (50,500)). *)

val solve : ?cluster:int -> Ttsv_geometry.Stack.t -> segmentation -> result
(** [solve stack seg] assembles and solves the distributed network using
    the stack's heat inputs.  [cluster] (default 1) divides the TTSV
    into that many equal-metal-area vias, applying eq. 22 to every
    distributed liner rung (the Fig. 7 workload). *)

val solve_with_heats :
  ?cluster:int -> Ttsv_geometry.Stack.t -> segmentation -> Ttsv_numerics.Vec.t -> result
(** Like {!solve} with explicit per-plane heats. *)

val solve_n : ?cluster:int -> Ttsv_geometry.Stack.t -> int -> result
(** [solve_n stack n] is [solve stack (paper_segmentation stack n)]. *)

val solve_adaptive :
  ?cluster:int -> ?rel_tol:float -> ?max_segments:int -> Ttsv_geometry.Stack.t -> result * int list
(** [solve_adaptive stack] chooses the segment count automatically:
    solves at n = 10 and keeps doubling until the Max ΔT changes by less
    than [rel_tol] (default 0.5 %) between consecutive levels or
    [max_segments] (default 2000) is reached, returning the finest
    result and the ladder of counts tried.  Table I's accuracy/runtime
    trade-off, resolved without the user picking n. *)

val max_rise : result -> float
(** The paper's Max ΔT: the largest nodal rise. *)

val solve_via_circuit : Ttsv_geometry.Stack.t -> segmentation -> float
(** Max ΔT computed by routing the same network through the generic
    {!Ttsv_network.Circuit} solver — a test oracle for the banded
    assembly. *)
