module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material
module Reduce = Ttsv_network.Reduce

type result = { t0 : float; plane_tops : float array; plane_resistances : float array }

(* Per plane: stack path (ILD + substrate + bond in series over the bulk
   area) in parallel with the TTSV metal path over the same span.  The bulk
   area ignores the liner (A0 - pi r^2): the traditional model has no liner
   at all. *)
let plane_resistance stack i =
  let p = Stack.plane stack i in
  let tsv = stack.Stack.tsv in
  let area = stack.Stack.footprint -. Tsv.fill_area tsv in
  let k_of (m : Material.t) = m.Material.conductivity in
  let si_span = if i = 0 then tsv.Tsv.extension else p.Plane.t_substrate in
  let bulk_layers =
    (p.Plane.t_ild /. k_of p.Plane.ild)
    +. (si_span /. k_of p.Plane.substrate)
    +. (p.Plane.t_bond /. k_of p.Plane.bond)
  in
  let bulk = bulk_layers /. area in
  let tsv_span = Resistances.plane_span stack i in
  let tsv_r = Reduce.cylinder_axial ~length:tsv_span ~conductivity:(k_of tsv.Tsv.filler) ~radius:tsv.Tsv.radius in
  Reduce.parallel [ bulk; tsv_r ]

let solve_with_heats stack qs =
  let n = Stack.num_planes stack in
  if Array.length qs <> n then invalid_arg "Model_1d.solve_with_heats: heat vector length mismatch";
  let first = Stack.plane stack 0 in
  let tsv = stack.Stack.tsv in
  let r_sink =
    (first.Plane.t_substrate -. tsv.Tsv.extension)
    /. (first.Plane.substrate.Material.conductivity *. stack.Stack.footprint)
  in
  let plane_resistances = Array.init n (plane_resistance stack) in
  let total = Ttsv_numerics.Vec.sum qs in
  let t0 = r_sink *. total in
  (* heat crossing plane i = everything injected at or above it *)
  let above = Array.make n 0. in
  let acc = ref 0. in
  for i = n - 1 downto 0 do
    acc := !acc +. qs.(i);
    above.(i) <- !acc
  done;
  let plane_tops = Array.make n 0. in
  let t = ref t0 in
  for i = 0 to n - 1 do
    t := !t +. (plane_resistances.(i) *. above.(i));
    plane_tops.(i) <- !t
  done;
  { t0; plane_tops; plane_resistances }

let solve stack = solve_with_heats stack (Stack.heat_inputs stack)

let max_rise r = Array.fold_left Float.max r.t0 r.plane_tops
