(** Package and ambient boundary (§II's closing remark).

    The paper's models compute rises above the bottom surface of the
    first plane; §II notes that "a voltage source and/or another resistor
    can be included to describe the ambient temperature and/or the
    thermal resistance of the package".  This module is that resistor and
    source: given a package/heat-sink resistance chain and an ambient
    temperature, it converts model rises into absolute junction
    temperatures and inverts the relation for cooling design. *)

type t = {
  ambient : float;  (** ambient temperature, °C *)
  resistance : float;  (** total sink-to-ambient resistance R_pkg, K/W *)
}

val make : ?ambient:float -> resistance:float -> unit -> t
(** [make ~resistance ()] with [ambient] defaulting to 25 °C.
    [resistance] must be nonnegative. *)

val of_parts : ?ambient:float -> spreader:float -> sink_to_air:float -> unit -> t
(** Convenience: a two-element chain (heat spreader + sink-to-air). *)

val sink_temperature : t -> total_power:float -> float
(** [sink_temperature pkg ~total_power] is the absolute temperature of
    the model's reference surface: ambient + R_pkg·P, °C. *)

val junction_temperature : t -> total_power:float -> model_rise:float -> float
(** [junction_temperature pkg ~total_power ~model_rise] is the absolute
    hottest-node temperature: sink temperature + the model's Max ΔT. *)

val max_power_for_junction :
  t -> model_rise_per_watt:float -> junction_limit:float -> float
(** [max_power_for_junction pkg ~model_rise_per_watt ~junction_limit] is
    the largest total power (W) keeping the junction below
    [junction_limit] °C, assuming the on-die rise scales linearly with
    power (exact for these linear models):
    P = (Tj − Ta) / (R_pkg + rise/W).  Raises [Invalid_argument] when
    the limit is at or below ambient. *)

val required_resistance :
  t -> total_power:float -> model_rise:float -> junction_limit:float -> float
(** [required_resistance pkg ~total_power ~model_rise ~junction_limit] is
    the largest package resistance meeting the junction limit at that
    power (the cooling-solution spec); negative results mean the limit
    is unreachable even with an ideal package. *)
