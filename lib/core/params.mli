(** The paper's §IV experimental setups as ready-made stacks.

    Two families are used throughout the evaluation:
    - the 100 µm × 100 µm three-plane {!block} that Figs. 4–7 and
      Table I sweep (t_Si1 = 500 µm, l_ext = 1 µm, 27 °C sink, device
      power density 700 W/mm³ in a thin device layer, 70 W/mm³ in the
      ILD, SiO₂ ILD and liner, polyimide bond, copper fill);
    - the 10 mm × 10 mm three-plane DRAM-µP {!case_study} unit cell
      (§IV-E). *)

val device_layer_thickness : float
(** Thickness of the regularized device heat source layer: 1 µm (the
    paper states a volumetric density for a surface source; 1 µm reproduces
    the paper's ΔT ranges; see
    DESIGN.md). *)

val device_power_density : float
(** 700 W/mm³ in W/m³. *)

val ild_power_density : float
(** 70 W/mm³ in W/m³. *)

val block :
  ?r:float ->
  ?t_liner:float ->
  ?t_ild:float ->
  ?t_bond:float ->
  ?t_si23:float ->
  ?t_si1:float ->
  ?l_ext:float ->
  unit ->
  Ttsv_geometry.Stack.t
(** [block ()] is the Fig. 4–7 unit cell; every keyword overrides one of
    the paper's parameters (all in metres).  Defaults: r = 5 µm,
    t_liner = 1 µm, t_ild = 4 µm, t_bond = 1 µm, t_si23 = 45 µm,
    t_si1 = 500 µm, l_ext = 1 µm. *)

val block_checked :
  ?r:float ->
  ?t_liner:float ->
  ?t_ild:float ->
  ?t_bond:float ->
  ?t_si23:float ->
  ?t_si1:float ->
  ?l_ext:float ->
  unit ->
  (Ttsv_geometry.Stack.t, Ttsv_robust.Validate.violation list) result
(** Like {!block}, but every constraint is checked through
    {!Ttsv_robust.Validate} first and {e all} violations are returned at
    once instead of dying on the first [Invalid_argument] — the entry
    point for the CLI and batch sweep drivers facing untrusted input. *)

val fig4_stack : float -> Ttsv_geometry.Stack.t
(** [fig4_stack r] is the Fig. 4 geometry for TTSV radius [r]:
    t_L = 0.5 µm, t_D = 4 µm, t_b = 1 µm, and the paper's aspect-ratio
    accommodation — t_Si2 = t_Si3 = 5 µm for r ≤ 5 µm, 45 µm beyond. *)

val fig5_stack : float -> Ttsv_geometry.Stack.t
(** [fig5_stack t_liner] is the Fig. 5 geometry: r = 5 µm, t_D = 7 µm,
    t_b = 1 µm, t_Si2,3 = 45 µm. *)

val fig6_stack : float -> Ttsv_geometry.Stack.t
(** [fig6_stack t_si] is the Fig. 6 geometry: t_L = 1 µm, t_D = 7 µm,
    t_b = 1 µm, r = 8 µm, substrate thickness [t_si] in planes 2–3. *)

val fig7_stack : unit -> Ttsv_geometry.Stack.t
(** The Fig. 7 geometry: r₀ = 10 µm, t_L = 1 µm, t_D = 4 µm, t_b = 1 µm,
    t_Si2,3 = 20 µm. *)

val block_coeffs : Coefficients.t
(** k1 = 1.3, k2 = 0.55 — the paper's fit for the block experiments. *)

val case_study : unit -> Ttsv_geometry.Stack.t * int
(** [case_study ()] is the §IV-E DRAM-µP system reduced to its per-TTSV
    unit cell, together with the TTSV count: 10 mm × 10 mm footprint,
    three planes with t_Si = 300 µm, t_D = 20 µm, t_b = 10 µm,
    r = 30 µm, t_L = 1 µm, TTSVs at 0.5 % area density, 70 W in the
    processor plane (plane 1, next to the sink) and 7 W in each DRAM
    plane, split evenly across unit cells. *)

val case_study_coeffs : Coefficients.t
(** k1 = 1.6, k2 = 0.8 — the paper's fit for the case study. *)

val case_study_powers : float array
(** Total per-plane power of the case study in watts: [[|70.; 7.; 7.|]]. *)
