(** Model A fitting coefficients.

    The paper introduces two coefficients calibrated against FEM: [k1]
    multiplies every vertical conductance (equivalently, divides the
    vertical resistances R1, R2, R4, R5, R7, R8 and R_s) and [k2]
    multiplies the lateral liner conductances (divides R3, R6, R9).
    They absorb the geometric spreading that a lumped one-node-per-plane
    network cannot represent.

    Model B needs no coefficients ({!unity}). *)

type t = { k1 : float; k2 : float }

val make : k1:float -> k2:float -> t
(** [make ~k1 ~k2] validates positivity and builds the record. *)

val unity : t
(** [k1 = 1, k2 = 1] — no fitting, used by Model B and the ablation. *)

val paper_block : t
(** [k1 = 1.3, k2 = 0.55] — the values the paper fits for the
    100 µm × 100 µm three-plane block (Figs. 4–7). *)

val paper_case_study : t
(** [k1 = 1.6, k2 = 0.8] — the values the paper fits for the
    10 mm × 10 mm DRAM-µP case study (Fig. 8). *)

val pp : Format.formatter -> t -> unit
