(** Closed-form solution of the three-plane Model A network.

    The paper omits the closed-form temperature expressions "due to space
    limitations"; this module reconstructs them.  Writing g_i = 1/R_i and
    working with rises θ_i = T_i − T0, the eq. 1–5 KCL system is reduced
    by eliminating θ5 (node T5) and θ2 (node T2), leaving a symmetric
    3×3 system in (θ1, θ3, θ4) that Cramer's rule solves explicitly; θ2,
    θ5 and T0 = R_s·Σq (eq. 6) follow by back-substitution.  Every
    temperature is therefore a finite rational expression in the nine
    resistances and three heats — no matrix factorization involved.

    The test suite verifies this module against the generic network
    solver of {!Model_a} to machine precision; it exists both as an
    independent oracle and as the fast path for the planner example,
    which evaluates millions of candidate geometries. *)

type temperatures = {
  t0 : float;  (** T0: rise above the sink at the TSV foot level *)
  t1 : float;  (** plane-1 bulk node rise *)
  t2 : float;  (** plane-1 TTSV node rise *)
  t3 : float;  (** plane-2 bulk node rise *)
  t4 : float;  (** plane-2 TTSV node rise *)
  t5 : float;  (** plane-3 bulk node rise *)
}

val solve : Resistances.t -> q1:float -> q2:float -> q3:float -> temperatures
(** [solve rs ~q1 ~q2 ~q3] evaluates the closed form.  Raises
    [Invalid_argument] unless [rs] describes exactly three planes. *)

val of_stack : ?coeffs:Coefficients.t -> Ttsv_geometry.Stack.t -> temperatures
(** Convenience wrapper: eq. 7–16 resistances from the stack, heats from
    the stack's power description.  Requires a 3-plane stack. *)

val max_rise : temperatures -> float
(** Largest of the six temperature rises. *)
