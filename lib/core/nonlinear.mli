(** Temperature-dependent conductivity for Model A (extension).

    Silicon's conductivity falls roughly as T^(−4/3) — about 25 % between
    300 K and 380 K — so a hot stack conducts worse than the constant-k
    models predict.  This module closes that loop for Model A by Picard
    iteration: solve, re-evaluate each plane's material conductivities at
    its own node temperature (substrate and ILD at the bulk node, the
    filler at the TTSV node), rebuild eqs. 7–16, repeat.

    Use materials with a k(T) law (e.g.
    {!Ttsv_physics.Materials.silicon_k_of_t}) in the stack; constant-k
    materials make this equivalent to {!Model_a.solve}. *)

val solve :
  ?coeffs:Coefficients.t ->
  ?picard_tol:float ->
  ?max_picard:int ->
  sink_temperature_k:float ->
  Ttsv_geometry.Stack.t ->
  Model_a.result * int
(** [solve ~sink_temperature_k stack] iterates until the Max ΔT changes
    by less than [picard_tol] (default 1e-6 relative) between sweeps,
    up to [max_picard] (default 50; [Failure] beyond).  Returns the
    converged result and the sweep count. *)

val self_heating_penalty :
  ?coeffs:Coefficients.t -> sink_temperature_k:float -> Ttsv_geometry.Stack.t -> float
(** [(nonlinear − linear) / linear] Max ΔT: how much the constant-k
    model underestimates the rise for this stack (0 for constant-k
    materials). *)
