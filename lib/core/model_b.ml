module Stack = Ttsv_geometry.Stack
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material
module Banded = Ttsv_numerics.Banded
module Circuit = Ttsv_network.Circuit

type segmentation = (int * int) array

type result = {
  t0 : float;
  temps : float array;
  bulk_profile : (float * float) array;
  tsv_profile : (float * float) array;
  nodes : int;
  segmentation : segmentation;
}

(* One π-segment: vertical bulk resistance to the node below, optional metal
   column piece and lateral rung, heat injected at the bulk node, and the
   vertical extent (for profiles). *)
type segment = {
  r_bulk : float;
  metal : (float * float) option; (* (r_metal, r_rung) *)
  heat : float;
  dz : float;
}

let segmentation_for stack ~counts =
  let n = Stack.num_planes stack in
  if Array.length counts <> n then
    invalid_arg "Model_b.segmentation_for: one count per plane required";
  Array.mapi
    (fun i count ->
      if count < 1 then invalid_arg "Model_b.segmentation_for: counts must be >= 1";
      let p = Stack.plane stack i in
      let t_si_part =
        if i = 0 then stack.Stack.tsv.Tsv.extension
        else p.Plane.t_bond +. p.Plane.t_substrate
      in
      let top = i = n - 1 in
      if count = 1 then if top then (1, 1) else (1, 0)
      else begin
        let frac = t_si_part /. (t_si_part +. p.Plane.t_ild) in
        let n_si = int_of_float (Float.round (float_of_int count *. frac)) in
        let n_si = Stdlib.min (count - 1) (Stdlib.max n_si (if top then 1 else 0)) in
        let n_si = if top then Stdlib.max n_si 1 else n_si in
        (count - n_si, n_si)
      end)
    counts

let paper_segmentation stack n =
  if n < 1 then invalid_arg "Model_b.paper_segmentation: n must be >= 1";
  let planes = Stack.num_planes stack in
  let counts = Array.make planes n in
  if planes > 0 then counts.(0) <- Stdlib.max 1 (n / 10);
  segmentation_for stack ~counts

(* Per-plane totals of eq. 21, evaluated without fitting coefficients.
   [cluster] > 1 applies eq. 22 to the liner total: the TTSV is split into
   [cluster] vias of radius r0/sqrt(cluster), leaving the vertical metal
   resistance unchanged and shrinking the lateral liner resistance. *)
let plane_totals ?(cluster = 1) stack i =
  let p = Stack.plane stack i in
  let tsv = stack.Stack.tsv in
  let area = Stack.silicon_area stack in
  let k_of (m : Material.t) = m.Material.conductivity in
  let span = Resistances.plane_span stack i in
  let t_si_part = if i = 0 then tsv.Tsv.extension else p.Plane.t_substrate in
  let r_ild = p.Plane.t_ild /. (k_of p.Plane.ild *. area) in
  let r_si = t_si_part /. (k_of p.Plane.substrate *. area) in
  let r_bond = p.Plane.t_bond /. (k_of p.Plane.bond *. area) in
  let r_metal = span /. (k_of tsv.Tsv.filler *. Tsv.fill_area tsv) in
  let r_liner =
    if cluster = 1 then
      log (Tsv.outer_radius tsv /. tsv.Tsv.radius)
      /. (2. *. Float.pi *. k_of tsv.Tsv.liner *. span)
    else begin
      let fn = float_of_int cluster in
      let r0 = tsv.Tsv.radius and t_l = tsv.Tsv.liner_thickness in
      log (((t_l *. sqrt fn) +. r0) /. r0)
      /. (2. *. fn *. Float.pi *. k_of tsv.Tsv.liner *. span)
    end
  in
  (r_ild, r_si, r_bond, r_metal, r_liner)

(* Expand a stack + segmentation into the flat bottom-to-top segment list. *)
let build_segments ?(cluster = 1) stack seg qs =
  if cluster < 1 then invalid_arg "Model_b.solve: cluster must be >= 1";
  let n = Stack.num_planes stack in
  if Array.length seg <> n then invalid_arg "Model_b.solve: segmentation length mismatch";
  if Array.length qs <> n then invalid_arg "Model_b.solve: heat vector length mismatch";
  let segments = ref [] in
  let push s = segments := s :: !segments in
  for i = 0 to n - 1 do
    let n_ild, n_si = seg.(i) in
    if n_ild < 1 then invalid_arg "Model_b.solve: each plane needs an ILD segment";
    if n_si < 0 then invalid_arg "Model_b.solve: negative substrate segment count";
    let top = i = n - 1 in
    if top && n_si = 0 then
      invalid_arg "Model_b.solve: the top plane needs a substrate segment";
    let p = Stack.plane stack i in
    let r_ild, r_si, r_bond, r_metal, r_liner = plane_totals ~cluster stack i in
    let n_total = n_ild + n_si in
    (* the top plane's metal column spans only its substrate segments *)
    let metal_segments = if top then n_si else n_total in
    let per_metal = r_metal /. float_of_int metal_segments in
    let per_rung = r_liner *. float_of_int metal_segments in
    let t_si_part = if i = 0 then stack.Stack.tsv.Tsv.extension else p.Plane.t_substrate in
    let dz_si =
      (p.Plane.t_bond +. t_si_part) /. float_of_int (Stdlib.max n_si 1)
    in
    let dz_ild = p.Plane.t_ild /. float_of_int n_ild in
    (* bond + substrate part, bottom first (bond folded into the first) *)
    for s = 0 to n_si - 1 do
      let r_bulk = (r_si /. float_of_int n_si) +. (if s = 0 then r_bond else 0.) in
      push { r_bulk; metal = Some (per_metal, per_rung); heat = 0.; dz = dz_si }
    done;
    (* ILD part; when there were no substrate segments, the substrate and
       bond resistances fold into the first ILD segment *)
    for s = 0 to n_ild - 1 do
      let r_bulk =
        (r_ild /. float_of_int n_ild) +. (if s = 0 && n_si = 0 then r_si +. r_bond else 0.)
      in
      let metal = if top then None else Some (per_metal, per_rung) in
      push { r_bulk; metal; heat = qs.(i) /. float_of_int n_ild; dz = dz_ild }
    done
  done;
  List.rev !segments

(* Assign node indices: T0 = 0; per segment the bulk node, then (if the
   segment carries metal) the metal node.  The interleaving keeps the
   half-bandwidth at 2. *)
let assemble ?cluster stack seg qs =
  let segments = build_segments ?cluster stack seg qs in
  let count =
    List.fold_left (fun acc s -> acc + (match s.metal with Some _ -> 2 | None -> 1)) 1 segments
  in
  let m = Banded.create ~n:count ~bw:2 in
  let rhs = Array.make count 0. in
  let stamp i j r =
    let g = 1. /. r in
    Banded.add_to m i i g;
    Banded.add_to m j j g;
    Banded.add_to m i j (-.g);
    Banded.add_to m j i (-.g)
  in
  let rs = Resistances.of_stack stack in
  (* T0 to ground through R_s: ground is eliminated, only the diagonal term
     remains *)
  Banded.add_to m 0 0 (1. /. rs.Resistances.r_sink);
  let next = ref 1 in
  let prev_bulk = ref 0 and prev_metal = ref 0 in
  let bulk_nodes = ref [] and metal_nodes = ref [] in
  let z = ref 0. in
  List.iter
    (fun s ->
      let b = !next in
      incr next;
      stamp !prev_bulk b s.r_bulk;
      rhs.(b) <- rhs.(b) +. s.heat;
      z := !z +. s.dz;
      bulk_nodes := (b, !z) :: !bulk_nodes;
      (match s.metal with
      | Some (r_metal, r_rung) ->
        let mnode = !next in
        incr next;
        stamp !prev_metal mnode r_metal;
        stamp b mnode r_rung;
        prev_metal := mnode;
        metal_nodes := (mnode, !z) :: !metal_nodes
      | None -> ());
      prev_bulk := b)
    segments;
  (m, rhs, List.rev !bulk_nodes, List.rev !metal_nodes)

let solve_with_heats ?cluster stack seg qs =
  let m, rhs, bulk_nodes, metal_nodes = assemble ?cluster stack seg qs in
  let temps = Banded.solve m rhs in
  let profile nodes = Array.of_list (List.map (fun (i, z) -> (z, temps.(i))) nodes) in
  {
    t0 = temps.(0);
    temps;
    bulk_profile = profile bulk_nodes;
    tsv_profile = profile metal_nodes;
    nodes = Array.length temps;
    segmentation = seg;
  }

let solve ?cluster stack seg = solve_with_heats ?cluster stack seg (Stack.heat_inputs stack)

let solve_n ?cluster stack n = solve ?cluster stack (paper_segmentation stack n)

let max_rise r = Array.fold_left Float.max 0. r.temps

let solve_adaptive ?cluster ?(rel_tol = 0.005) ?(max_segments = 2000) stack =
  if rel_tol <= 0. then invalid_arg "Model_b.solve_adaptive: rel_tol must be positive";
  let rec refine n prev tried =
    let r = solve_n ?cluster stack n in
    let tried = n :: tried in
    let converged =
      match prev with
      | Some p -> Float.abs (max_rise r -. p) <= rel_tol *. Float.max (max_rise r) 1e-12
      | None -> false
    in
    if converged || 2 * n > max_segments then (r, List.rev tried)
    else refine (2 * n) (Some (max_rise r)) tried
  in
  refine 10 None []

(* Test oracle: the same network through the generic circuit solver. *)
let solve_via_circuit stack seg =
  let qs = Stack.heat_inputs stack in
  let segments = build_segments stack seg qs in
  let rs = Resistances.of_stack stack in
  let c = Circuit.create () in
  let ground = Circuit.ground c in
  let t0 = Circuit.add_node c "T0" in
  Circuit.add_resistor c t0 ground rs.Resistances.r_sink;
  let prev_bulk = ref t0 and prev_metal = ref t0 in
  List.iteri
    (fun i s ->
      let b = Circuit.add_node c (Printf.sprintf "b%d" i) in
      Circuit.add_resistor c !prev_bulk b s.r_bulk;
      if s.heat <> 0. then Circuit.add_heat_source c b s.heat;
      (match s.metal with
      | Some (r_metal, r_rung) ->
        let mnode = Circuit.add_node c (Printf.sprintf "m%d" i) in
        Circuit.add_resistor c !prev_metal mnode r_metal;
        Circuit.add_resistor c b mnode r_rung;
        prev_metal := mnode
      | None -> ());
      prev_bulk := b)
    segments;
  let sol = Circuit.solve c in
  Circuit.max_temperature sol
