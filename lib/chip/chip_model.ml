module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Material = Ttsv_physics.Material
module Coefficients = Ttsv_core.Coefficients
module Circuit = Ttsv_network.Circuit

type t = {
  width : float;
  height : float;
  nx : int;
  ny : int;
  planes : Plane.t list;
  tsv : Tsv.t;
  coeffs : Coefficients.t;
}

let make ?(coeffs = Coefficients.unity) ~width ~height ~nx ~ny ~planes ~tsv () =
  if width <= 0. || height <= 0. then invalid_arg "Chip_model.make: extent must be positive";
  if nx < 1 || ny < 1 then invalid_arg "Chip_model.make: grid must be positive";
  (match planes with
  | [] -> invalid_arg "Chip_model.make: at least one plane"
  | first :: rest ->
    if first.Plane.t_bond <> 0. then
      invalid_arg "Chip_model.make: the first plane must have no bond";
    List.iter
      (fun p ->
        if p.Plane.t_bond <= 0. then
          invalid_arg "Chip_model.make: upper planes need a bonding layer")
      rest;
    if tsv.Tsv.extension >= first.Plane.t_substrate then
      invalid_arg "Chip_model.make: TSV extension exceeds the first substrate");
  { width; height; nx; ny; planes; tsv; coeffs }

type densities = float array

let tile_area chip = chip.width /. float_of_int chip.nx *. (chip.height /. float_of_int chip.ny)

let uniform_density chip d =
  if d < 0. || d >= 1. then invalid_arg "Chip_model.uniform_density: density outside [0, 1)";
  Array.make (chip.nx * chip.ny) d

let vias_per_tile chip ds x y =
  let d = ds.((y * chip.nx) + x) in
  d *. tile_area chip /. Tsv.fill_area chip.tsv

type result = {
  grid_nx : int;
  rises : float array array;
  max_rise : float;
  hottest : int * int * int;
  sink_heat : float;
}

(* Vertical span of the TTSV segment in plane i (the eq. 7-16 spans). *)
let span chip i (p : Plane.t) =
  let n = List.length chip.planes in
  if i = 0 then p.Plane.t_ild +. chip.tsv.Tsv.extension
  else if i = n - 1 then p.Plane.t_bond +. p.Plane.t_substrate
  else p.Plane.t_bond +. p.Plane.t_substrate +. p.Plane.t_ild

(* Per-layer t/k sum over plane i's bulk path (eqs. 7, 10, 13). *)
let bulk_layers chip i (p : Plane.t) =
  let n = List.length chip.planes in
  let k_of (m : Material.t) = m.Material.conductivity in
  let ild = p.Plane.t_ild /. k_of p.Plane.ild in
  let bond = p.Plane.t_bond /. k_of p.Plane.bond in
  if i = 0 then ild +. (chip.tsv.Tsv.extension /. k_of p.Plane.substrate)
  else if i = n - 1 then ild +. (p.Plane.t_substrate /. k_of p.Plane.substrate) +. bond
  else ild +. (p.Plane.t_substrate /. k_of p.Plane.substrate) +. bond

let solve chip ds power =
  let nx = chip.nx and ny = chip.ny in
  let nplanes = List.length chip.planes in
  if Array.length ds <> nx * ny then invalid_arg "Chip_model.solve: densities length mismatch";
  Array.iter
    (fun d -> if d < 0. || d >= 1. then invalid_arg "Chip_model.solve: density outside [0, 1)")
    ds;
  if List.length power <> nplanes then
    invalid_arg "Chip_model.solve: one power map per plane required";
  List.iter
    (fun m ->
      if Power_map.nx m <> nx || Power_map.ny m <> ny then
        invalid_arg "Chip_model.solve: power-map grid mismatch")
    power;
  let at = tile_area chip in
  let { Coefficients.k1; k2 } = chip.coeffs in
  let k_of (m : Material.t) = m.Material.conductivity in
  let k_fill = k_of chip.tsv.Tsv.filler and k_liner = k_of chip.tsv.Tsv.liner in
  let fill = Tsv.fill_area chip.tsv and occupied = Tsv.occupied_area chip.tsv in
  let first = List.hd chip.planes in
  let c = Circuit.create () in
  let ground = Circuit.ground c in
  let tile x y = (y * nx) + x in
  (* nodes *)
  let t0 =
    Array.init (nx * ny) (fun i -> Circuit.add_node c (Printf.sprintf "t0[%d]" i))
  in
  let bulk =
    Array.init nplanes (fun j ->
        Array.init (nx * ny) (fun i -> Circuit.add_node c (Printf.sprintf "b%d[%d]" j i)))
  in
  let via =
    Array.init (Stdlib.max 0 (nplanes - 1)) (fun j ->
        Array.init (nx * ny) (fun i ->
            if ds.(i) > 0. then Some (Circuit.add_node c (Printf.sprintf "v%d[%d]" j i))
            else None))
  in
  (* per-tile vertical ladders *)
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      let i = tile x y in
      let n_vias = ds.(i) *. at /. fill in
      let a_eff = at -. (n_vias *. occupied) in
      if a_eff <= 0. then
        invalid_arg
          (Printf.sprintf "Chip_model.solve: vias exceed tile (%d,%d) area" x y);
      (* sink path through the thick first substrate *)
      Circuit.add_resistor c t0.(i) ground
        ((first.Plane.t_substrate -. chip.tsv.Tsv.extension)
        /. (k1 *. k_of first.Plane.substrate *. at));
      List.iteri
        (fun j p ->
          let below_bulk = if j = 0 then t0.(i) else bulk.(j - 1).(i) in
          Circuit.add_resistor c below_bulk bulk.(j).(i)
            (bulk_layers chip j p /. (k1 *. a_eff));
          if n_vias > 0. then begin
            let sp = span chip j p in
            let tsv_r = sp /. (k1 *. k_fill *. n_vias *. fill) in
            let liner_r =
              log (Tsv.outer_radius chip.tsv /. chip.tsv.Tsv.radius)
              /. (2. *. Float.pi *. k2 *. k_liner *. sp *. n_vias)
            in
            if j < nplanes - 1 then begin
              let v = Option.get via.(j).(i) in
              let below_via = if j = 0 then t0.(i) else Option.get via.(j - 1).(i) in
              Circuit.add_resistor c below_via v tsv_r;
              Circuit.add_resistor c bulk.(j).(i) v liner_r
            end
            else if nplanes = 1 then
              Circuit.add_resistor c t0.(i) bulk.(j).(i) (tsv_r +. liner_r)
            else
              (* top plane: filler + liner in series into the top bulk node *)
              Circuit.add_resistor c
                (Option.get via.(j - 1).(i))
                bulk.(j).(i) (tsv_r +. liner_r)
          end)
        chip.planes
    done
  done;
  (* lateral spreading within each silicon layer *)
  let dx = chip.width /. float_of_int nx and dy = chip.height /. float_of_int ny in
  let lateral nodes thickness k =
    if thickness > 0. then begin
      for y = 0 to ny - 1 do
        for x = 0 to nx - 2 do
          Circuit.add_resistor c nodes.(tile x y) nodes.(tile (x + 1) y)
            (dx /. (k *. thickness *. dy))
        done
      done;
      for y = 0 to ny - 2 do
        for x = 0 to nx - 1 do
          Circuit.add_resistor c nodes.(tile x y) nodes.(tile x (y + 1))
            (dy /. (k *. thickness *. dx))
        done
      done
    end
  in
  if nx > 1 || ny > 1 then begin
    lateral t0
      (first.Plane.t_substrate -. chip.tsv.Tsv.extension)
      (k_of first.Plane.substrate);
    List.iteri
      (fun j (p : Plane.t) ->
        let th = if j = 0 then chip.tsv.Tsv.extension else p.Plane.t_substrate in
        lateral bulk.(j) th (k_of p.Plane.substrate))
      chip.planes
  end;
  (* heat injection *)
  List.iteri
    (fun j m ->
      for y = 0 to ny - 1 do
        for x = 0 to nx - 1 do
          let w = Power_map.get m x y in
          if w > 0. then Circuit.add_heat_source c bulk.(j).(tile x y) w
        done
      done)
    power;
  let sol = Circuit.solve c in
  let rises =
    Array.init nplanes (fun j -> Array.map (Circuit.temperature sol) bulk.(j))
  in
  let max_rise = ref 0. and hottest = ref (0, 0, 0) in
  Array.iteri
    (fun j plane_rises ->
      Array.iteri
        (fun i r ->
          if r > !max_rise then begin
            max_rise := r;
            hottest := (j, i mod nx, i / nx)
          end)
        plane_rises)
    rises;
  let sink_heat =
    Array.fold_left
      (fun acc n -> acc +. Circuit.branch_heat_flow sol n ground)
      0. t0
  in
  { grid_nx = nx; rises; max_rise = !max_rise; hottest = !hottest; sink_heat }

let rise_at result ~plane ~x ~y = result.rises.(plane).((y * result.grid_nx) + x)

let pp_plane result ~plane ppf =
  let row = result.rises.(plane) in
  let peak = Float.max 1e-30 result.max_rise in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 && i mod result.grid_nx = 0 then Format.pp_print_cut ppf ();
      Format.pp_print_char ppf
        (Char.chr (Char.code '0' + Stdlib.min 9 (int_of_float (r /. peak *. 9.999)))))
    row;
  Format.fprintf ppf "@]"
