type t = { nx : int; ny : int; watts : float array (* row-major, y * nx + x *) }

let check_grid nx ny =
  if nx < 1 || ny < 1 then invalid_arg "Power_map: grid dimensions must be positive"

let idx m x y =
  if x < 0 || x >= m.nx || y < 0 || y >= m.ny then
    invalid_arg (Printf.sprintf "Power_map: tile (%d,%d) outside %dx%d" x y m.nx m.ny);
  (y * m.nx) + x

let zero ~nx ~ny =
  check_grid nx ny;
  { nx; ny; watts = Array.make (nx * ny) 0. }

let uniform ~nx ~ny ~total =
  check_grid nx ny;
  if total < 0. then invalid_arg "Power_map.uniform: negative total";
  { nx; ny; watts = Array.make (nx * ny) (total /. float_of_int (nx * ny)) }

let of_function ~nx ~ny f =
  check_grid nx ny;
  let watts =
    Array.init (nx * ny) (fun i ->
        let w = f (i mod nx) (i / nx) in
        if w < 0. then invalid_arg "Power_map.of_function: negative tile power";
        w)
  in
  { nx; ny; watts }

let add_hotspot m ~x0 ~y0 ~x1 ~y1 ~watts =
  if watts < 0. then invalid_arg "Power_map.add_hotspot: negative watts";
  let clamp v lo hi = Stdlib.max lo (Stdlib.min hi v) in
  let x0 = clamp x0 0 (m.nx - 1) and x1 = clamp x1 0 (m.nx - 1) in
  let y0 = clamp y0 0 (m.ny - 1) and y1 = clamp y1 0 (m.ny - 1) in
  if x1 < x0 || y1 < y0 then invalid_arg "Power_map.add_hotspot: empty rectangle";
  let tiles = float_of_int ((x1 - x0 + 1) * (y1 - y0 + 1)) in
  let w = Array.copy m.watts in
  for y = y0 to y1 do
    for x = x0 to x1 do
      w.((y * m.nx) + x) <- w.((y * m.nx) + x) +. (watts /. tiles)
    done
  done;
  { m with watts = w }

let scale m f =
  if f < 0. then invalid_arg "Power_map.scale: negative factor";
  { m with watts = Array.map (fun w -> w *. f) m.watts }

let nx m = m.nx
let ny m = m.ny
let get m x y = m.watts.(idx m x y)
let total m = Array.fold_left ( +. ) 0. m.watts

let hottest_tile m =
  let best = ref 0 in
  Array.iteri (fun i w -> if w > m.watts.(!best) then best := i) m.watts;
  (!best mod m.nx, !best / m.nx)

let pp ppf m =
  let peak = Array.fold_left Float.max 0. m.watts in
  Format.fprintf ppf "@[<v>";
  for y = m.ny - 1 downto 0 do
    for x = 0 to m.nx - 1 do
      let w = m.watts.((y * m.nx) + x) in
      let c =
        if peak <= 0. || w <= 0. then '.'
        else Char.chr (Char.code '0' + Stdlib.min 9 (int_of_float (w /. peak *. 9.999)))
      in
      Format.pp_print_char ppf c
    done;
    if y > 0 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
