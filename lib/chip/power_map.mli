(** Tile-resolved power maps.

    The full-chip compact model divides each plane into an nx × ny grid of
    tiles; a power map assigns the wattage each tile dissipates.  Maps are
    immutable; builders cover the common cases (uniform floor power,
    rectangular hotspots, arbitrary functions). *)

type t
(** A power map over a fixed tile grid, in watts per tile. *)

val uniform : nx:int -> ny:int -> total:float -> t
(** [uniform ~nx ~ny ~total] spreads [total] watts evenly.  [nx], [ny]
    must be positive and [total] nonnegative. *)

val zero : nx:int -> ny:int -> t
(** No power anywhere. *)

val of_function : nx:int -> ny:int -> (int -> int -> float) -> t
(** [of_function ~nx ~ny f] sets tile [(x, y)] to [f x y] watts
    (nonnegative; [Invalid_argument] otherwise). *)

val add_hotspot : t -> x0:int -> y0:int -> x1:int -> y1:int -> watts:float -> t
(** [add_hotspot m ~x0 ~y0 ~x1 ~y1 ~watts] adds [watts] spread uniformly
    over the inclusive tile rectangle — a block of logic lighting up.
    Bounds are clamped to the grid; the rectangle must be nonempty. *)

val scale : t -> float -> t
(** [scale m f] multiplies every tile by the nonnegative factor [f]. *)

val nx : t -> int

val ny : t -> int

val get : t -> int -> int -> float
(** [get m x y] is the tile's wattage.  Raises [Invalid_argument] out of
    range. *)

val total : t -> float
(** Sum over all tiles, W. *)

val hottest_tile : t -> int * int
(** Coordinates of the highest-power tile (first in row-major order on
    ties). *)

val pp : Format.formatter -> t -> unit
(** Coarse ASCII heat map (one character per tile, '.' to '9' scaled to
    the maximum). *)
