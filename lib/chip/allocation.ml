type options = { budget : float; step : float; max_density : float; max_iterations : int }

let default_options ~budget =
  if budget <= 0. then invalid_arg "Allocation.default_options: budget must be positive";
  { budget; step = 0.002; max_density = 0.2; max_iterations = 2000 }

type outcome = {
  densities : Chip_model.densities;
  final : Chip_model.result;
  iterations : int;
  feasible : bool;
  metal_area : float;
  history : float array;
}

let metal_area chip ds =
  let tile =
    chip.Chip_model.width /. float_of_int chip.Chip_model.nx
    *. (chip.Chip_model.height /. float_of_int chip.Chip_model.ny)
  in
  Array.fold_left (fun acc d -> acc +. (d *. tile)) 0. ds

let validate_options o =
  if o.budget <= 0. then invalid_arg "Allocation.allocate: budget must be positive";
  if o.step <= 0. then invalid_arg "Allocation.allocate: step must be positive";
  if o.max_density <= 0. || o.max_density >= 1. then
    invalid_arg "Allocation.allocate: max_density outside (0, 1)";
  if o.max_iterations < 1 then invalid_arg "Allocation.allocate: max_iterations must be >= 1"

let allocate chip power o =
  validate_options o;
  let nx = chip.Chip_model.nx and ny = chip.Chip_model.ny in
  let ds = Array.make (nx * ny) 0. in
  let history = ref [] in
  let rec loop iter result =
    history := result.Chip_model.max_rise :: !history;
    if result.Chip_model.max_rise <= o.budget then (iter, result, true)
    else if iter >= o.max_iterations then (iter, result, false)
    else begin
      (* grow the via column under the hottest tile; if that column is
         saturated, fall back to the hottest unsaturated tile across the
         whole top plane *)
      let _, hx, hy = result.Chip_model.hottest in
      let saturated i = ds.(i) >= o.max_density -. 1e-12 in
      let target =
        let i = (hy * nx) + hx in
        if not (saturated i) then Some i
        else begin
          (* hottest unsaturated tile of the hottest plane *)
          let top = result.Chip_model.rises.(Array.length result.Chip_model.rises - 1) in
          let best = ref None in
          Array.iteri
            (fun j r ->
              if not (saturated j) then
                match !best with
                | Some (_, rb) when rb >= r -> ()
                | _ -> best := Some (j, r))
            top;
          Option.map fst !best
        end
      in
      match target with
      | None -> (iter, result, false) (* every tile saturated *)
      | Some i ->
        ds.(i) <- Float.min o.max_density (ds.(i) +. o.step);
        loop (iter + 1) (Chip_model.solve chip ds power)
    end
  in
  let iterations, final, feasible = loop 0 (Chip_model.solve chip ds power) in
  {
    densities = ds;
    final;
    iterations;
    feasible;
    metal_area = metal_area chip ds;
    history = Array.of_list (List.rev !history);
  }

let pp_densities chip ds ppf =
  let nx = chip.Chip_model.nx in
  let peak = Array.fold_left Float.max 1e-30 ds in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i d ->
      if i > 0 && i mod nx = 0 then Format.pp_print_cut ppf ();
      let c =
        if d <= 0. then '.'
        else Char.chr (Char.code '1' + Stdlib.min 8 (int_of_float (d /. peak *. 8.999)))
      in
      Format.pp_print_char ppf c)
    ds;
  Format.fprintf ppf "@]"
