type options = {
  budget : float;
  step : float;
  max_density : float;
  max_iterations : int;
  candidates : int;
}

let default_options ~budget =
  if budget <= 0. then invalid_arg "Allocation.default_options: budget must be positive";
  { budget; step = 0.002; max_density = 0.2; max_iterations = 2000; candidates = 1 }

type outcome = {
  densities : Chip_model.densities;
  final : Chip_model.result;
  iterations : int;
  feasible : bool;
  metal_area : float;
  history : float array;
}

let metal_area chip ds =
  let tile =
    chip.Chip_model.width /. float_of_int chip.Chip_model.nx
    *. (chip.Chip_model.height /. float_of_int chip.Chip_model.ny)
  in
  Array.fold_left (fun acc d -> acc +. (d *. tile)) 0. ds

let validate_options o =
  if o.budget <= 0. then invalid_arg "Allocation.allocate: budget must be positive";
  if o.step <= 0. then invalid_arg "Allocation.allocate: step must be positive";
  if o.max_density <= 0. || o.max_density >= 1. then
    invalid_arg "Allocation.allocate: max_density outside (0, 1)";
  if o.max_iterations < 1 then invalid_arg "Allocation.allocate: max_iterations must be >= 1";
  if o.candidates < 1 then invalid_arg "Allocation.allocate: candidates must be >= 1"

let allocate ?pool chip power o =
  validate_options o;
  let nx = chip.Chip_model.nx and ny = chip.Chip_model.ny in
  let ds = Array.make (nx * ny) 0. in
  let history = ref [] in
  let saturated i = ds.(i) >= o.max_density -. 1e-12 in
  (* hottest unsaturated tile of the hottest plane *)
  let hottest_unsaturated result =
    let top = result.Chip_model.rises.(Array.length result.Chip_model.rises - 1) in
    let best = ref None in
    Array.iteri
      (fun j r ->
        if not (saturated j) then
          match !best with Some (_, rb) when rb >= r -> () | _ -> best := Some (j, r))
      top;
    Option.map fst !best
  in
  (* the classic greedy target: the hottest tile's column, falling back
     to the hottest unsaturated tile when that column is saturated *)
  let greedy_target result =
    let _, hx, hy = result.Chip_model.hottest in
    let i = (hy * nx) + hx in
    if not (saturated i) then Some i else hottest_unsaturated result
  in
  (* look-ahead selection: score the [candidates] hottest unsaturated
     tiles — one trial solve each, evaluated over the pool — and commit
     the one whose grown column cools the chip most.  Ties (and the
     candidates = 1 case, which skips the trial solves entirely) resolve
     to the hottest tile, so the legacy greedy behaviour is the exact
     [candidates = 1] special case. *)
  let lookahead_target result =
    let top = result.Chip_model.rises.(Array.length result.Chip_model.rises - 1) in
    let ranked =
      Array.to_list (Array.mapi (fun j r -> (j, r)) top)
      |> List.filter (fun (j, _) -> not (saturated j))
      |> List.sort (fun (i, a) (j, b) ->
             match compare b a with 0 -> compare i j | c -> c)
    in
    match ranked with
    | [] -> None
    | [ (j, _) ] -> Some j
    | ranked ->
      let cands =
        Array.of_list (List.map fst (List.filteri (fun k _ -> k < o.candidates) ranked))
      in
      let score j =
        let trial = Array.copy ds in
        trial.(j) <- Float.min o.max_density (trial.(j) +. o.step);
        (Chip_model.solve chip trial power).Chip_model.max_rise
      in
      let scores =
        Ttsv_parallel.Pool.map_array
          (Option.value pool ~default:Ttsv_parallel.Pool.seq)
          score cands
      in
      (* argmin in candidate (hotness) order: ties keep the hotter tile *)
      let best = ref 0 in
      Array.iteri (fun k s -> if s < scores.(!best) then best := k) scores;
      Some cands.(!best)
  in
  let rec loop iter result =
    history := result.Chip_model.max_rise :: !history;
    if result.Chip_model.max_rise <= o.budget then (iter, result, true)
    else if iter >= o.max_iterations then (iter, result, false)
    else begin
      let target =
        if o.candidates <= 1 then greedy_target result else lookahead_target result
      in
      match target with
      | None -> (iter, result, false) (* every tile saturated *)
      | Some i ->
        ds.(i) <- Float.min o.max_density (ds.(i) +. o.step);
        loop (iter + 1) (Chip_model.solve chip ds power)
    end
  in
  let iterations, final, feasible = loop 0 (Chip_model.solve chip ds power) in
  {
    densities = ds;
    final;
    iterations;
    feasible;
    metal_area = metal_area chip ds;
    history = Array.of_list (List.rev !history);
  }

let pp_densities chip ds ppf =
  let nx = chip.Chip_model.nx in
  let peak = Array.fold_left Float.max 1e-30 ds in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i d ->
      if i > 0 && i mod nx = 0 then Format.pp_print_cut ppf ();
      let c =
        if d <= 0. then '.'
        else Char.chr (Char.code '1' + Stdlib.min 8 (int_of_float (d /. peak *. 8.999)))
      in
      Format.pp_print_char ppf c)
    ds;
  Format.fprintf ppf "@]"
