(** Thermal-via allocation (the paper's motivating methodology, cf. its
    refs. [4], [5]).

    Given a chip model, per-plane power maps and a temperature budget,
    allocate per-tile TTSV density so the budget is met with as little
    via metal as possible — "a critical resource in 3-D ICs" (paper §V).

    The allocator is the classic greedy loop the TSV-planning literature
    uses: solve the compact model, find the hottest tile column, add via
    density there, repeat.  Each solve is a compact-network evaluation,
    which is exactly what makes model-in-the-loop planning affordable
    compared to FEM (the paper's closing argument). *)

type options = {
  budget : float;  (** maximum allowed rise above the sink, K *)
  step : float;  (** density added to the chosen tile per iteration *)
  max_density : float;  (** per-tile density cap, < 1 *)
  max_iterations : int;
  candidates : int;
      (** tiles scored per iteration: 1 (default) is the classic greedy
          hottest-tile rule; [k > 1] trial-solves the [k] hottest
          unsaturated top-plane tiles and commits the one that cools the
          chip most (look-ahead) *)
}

val default_options : budget:float -> options
(** [step = 0.002], [max_density = 0.2], [max_iterations = 2000],
    [candidates = 1]. *)

type outcome = {
  densities : Chip_model.densities;  (** the final per-tile allocation *)
  final : Chip_model.result;  (** chip solution at that allocation *)
  iterations : int;
  feasible : bool;  (** whether the budget was met *)
  metal_area : float;  (** total via metal allocated, m² *)
  history : float array;  (** max rise after each iteration (including start) *)
}

val allocate :
  ?pool:Ttsv_parallel.Pool.t -> Chip_model.t -> Power_map.t list -> options -> outcome
(** [allocate chip power opts] runs the greedy loop from an empty
    allocation.  Infeasible problems (budget unreachable even at the cap
    everywhere) terminate with [feasible = false] when every tile is
    saturated or the iteration cap is hit.  With [candidates > 1] the
    per-iteration trial solves are evaluated over [pool]; candidate
    ranking and tie-breaking are deterministic, so the allocation is
    identical with or without a pool. *)

val metal_area : Chip_model.t -> Chip_model.densities -> float
(** Total via metal a density allocation spends, m². *)

val pp_densities : Chip_model.t -> Chip_model.densities -> Format.formatter -> unit
(** ASCII map of the allocation ('.' = none, '1'-'9' scaled to the cap). *)
