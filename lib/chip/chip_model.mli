(** Full-chip compact thermal model (extension beyond the paper).

    The paper analyzes one TTSV unit cell; real floorplans have non-uniform
    power and non-uniform via allocation.  This module tiles each plane
    into an nx × ny grid and builds the compact network the paper's
    related work ([10], [11]) describes, with the paper's TTSV model
    embedded in every tile:

    - per tile, the vertical eq. 7–16 ladder (bulk chain, TTSV chain where
      the tile has vias, lateral liner rungs), with the tile's via count
      entering as parallel conductance;
    - per plane, lateral silicon-spreading resistors between adjacent
      tiles (and between the thick first-substrate nodes);
    - per tile, R_s to the isothermal heat sink.

    The via count per tile is real-valued: a density is a continuous
    design variable for the allocator, and conductances scale linearly in
    it.  A single-tile chip with one via degenerates exactly to Model A —
    asserted by the test suite. *)

type t = {
  width : float;  (** chip extent in x, m *)
  height : float;  (** chip extent in y, m *)
  nx : int;
  ny : int;
  planes : Ttsv_geometry.Plane.t list;  (** plane geometry (power fields unused) *)
  tsv : Ttsv_geometry.Tsv.t;  (** via type used wherever the density is positive *)
  coeffs : Ttsv_core.Coefficients.t;
}

val make :
  ?coeffs:Ttsv_core.Coefficients.t ->
  width:float ->
  height:float ->
  nx:int ->
  ny:int ->
  planes:Ttsv_geometry.Plane.t list ->
  tsv:Ttsv_geometry.Tsv.t ->
  unit ->
  t
(** Validates dimensions (positive extent and grid, at least one plane,
    first plane bondless, the rest bonded — the {!Ttsv_geometry.Stack}
    rules). *)

type densities = float array
(** Row-major per-tile TTSV area density (fraction of the tile's area that
    is via metal), length [nx * ny]. *)

val uniform_density : t -> float -> densities
(** [uniform_density chip d] is [d] everywhere; [0 <= d < 1]. *)

val vias_per_tile : t -> densities -> int -> int -> float
(** [vias_per_tile chip ds x y] is the (real-valued) via count the density
    implies for that tile. *)

type result = {
  grid_nx : int;  (** tiles per row, for indexing [rises] *)
  rises : float array array;  (** [rises.(plane).(y * grid_nx + x)] bulk rise, K *)
  max_rise : float;
  hottest : int * int * int;  (** (plane, x, y) of the peak *)
  sink_heat : float;  (** total heat crossing the R_s layer, W *)
}

val solve : t -> densities -> Power_map.t list -> result
(** [solve chip ds power] solves the chip; [power] has one map per plane
    on the chip's grid.  Raises [Invalid_argument] on mismatched grids or
    plane counts, densities outside [0, 1), or vias that no longer fit
    their tile. *)

val rise_at : result -> plane:int -> x:int -> y:int -> float

val pp_plane : result -> plane:int -> Format.formatter -> unit
(** ASCII map of one plane's temperature field ('0'–'9' scaled to the
    global maximum). *)
