(** Electrical parasitics of a through-silicon via.

    Closed forms in the spirit of the paper's reference [15] (Katti,
    Stucchi, De Meyer, Dehaene, IEEE TED 2010): DC and skin-effect
    resistance with temperature-dependent resistivity, the cylindrical
    MOS (oxide-liner) capacitance, and the partial self-inductance of a
    cylindrical conductor.  These are the inputs of the Joule
    self-heating coupling in {!Joule} and of signal-TSV delay budgeting.

    All quantities are SI; lengths in metres, temperature in kelvin. *)

type conductor = {
  resistivity_293k : float;  (** ρ₀ at 293 K, Ω·m *)
  temperature_coeff : float;  (** α in ρ(T) = ρ₀(1 + α(T − 293 K)), 1/K *)
}

val copper : conductor
(** ρ₀ = 1.72e-8 Ω·m, α = 3.93e-3 /K. *)

val tungsten : conductor
(** ρ₀ = 5.28e-8 Ω·m, α = 4.5e-3 /K. *)

val resistivity : conductor -> temp_k:float -> float
(** ρ(T); clamped below at 10 % of ρ₀ to stay physical at extreme
    extrapolations. *)

val dc_resistance : conductor -> radius:float -> length:float -> temp_k:float -> float
(** R = ρ(T)·L/(πr²), Ω. *)

val skin_depth : conductor -> frequency:float -> temp_k:float -> float
(** δ = √(2ρ/(ωμ₀)); raises [Invalid_argument] for nonpositive
    frequency. *)

val ac_resistance :
  conductor -> radius:float -> length:float -> frequency:float -> temp_k:float -> float
(** Skin-effect resistance: the DC value while δ ≥ r, otherwise
    ρL/(π(r² − (r − δ)²)) — current confined to the outer annulus.
    Never below the DC value. *)

val oxide_capacitance :
  ?epsilon_r:float -> radius:float -> liner_thickness:float -> length:float -> unit -> float
(** Cylindrical-capacitor liner capacitance
    C = 2πε₀εᵣL / ln((r + t)/r), F.  [epsilon_r] defaults to 3.9
    (SiO₂). *)

val self_inductance : radius:float -> length:float -> float
(** Partial self-inductance of a cylindrical conductor,
    L = (μ₀ℓ/2π)(ln(2ℓ/r) − 3/4), H.  Requires [length > radius]. *)

val rc_delay : resistance:float -> capacitance:float -> float
(** 0.69·R·C — the Elmore-style delay figure signal-TSV budgets quote. *)

val joule_power : conductor -> radius:float -> length:float -> temp_k:float -> current_rms:float -> float
(** I²·R_DC(T), W. *)
