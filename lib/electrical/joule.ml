module Stack = Ttsv_geometry.Stack
module Tsv = Ttsv_geometry.Tsv
module Model_a = Ttsv_core.Model_a
module Resistances = Ttsv_core.Resistances
module Circuit = Ttsv_network.Circuit
module Optimize = Ttsv_numerics.Optimize

type result = {
  baseline_rise : float;
  rise : float;
  via_temperature : float;
  joule_power : float;
  resistance : float;
  iterations : int;
}

(* Solve the Model A network with [power] watts of Joule heat spread over
   the via nodes proportionally to each plane's span.  Returns (max rise,
   mean via rise). *)
let solve_with_joule rs stack power =
  let qs = Stack.heat_inputs stack in
  let net = Model_a.build_network rs qs in
  let nvias = Array.length net.Model_a.tsv_nodes in
  let spans = Array.init nvias (fun i -> Resistances.plane_span stack i) in
  (* the top plane's share lands on the last via node *)
  let top_span = Resistances.plane_span stack (Stack.num_planes stack - 1) in
  let total_span = Array.fold_left ( +. ) top_span spans in
  if nvias = 0 then begin
    (* single-plane stack: the via heat enters the bulk node *)
    Circuit.add_heat_source net.Model_a.circuit net.Model_a.bulk_nodes.(0) power
  end
  else begin
    Array.iteri
      (fun i node ->
        let share = spans.(i) /. total_span in
        Circuit.add_heat_source net.Model_a.circuit node (power *. share))
      net.Model_a.tsv_nodes;
    Circuit.add_heat_source net.Model_a.circuit
      net.Model_a.tsv_nodes.(nvias - 1)
      (power *. top_span /. total_span)
  end;
  let sol = Circuit.solve net.Model_a.circuit in
  let max_rise = Circuit.max_temperature sol in
  let via_rise =
    if nvias = 0 then Circuit.temperature sol net.Model_a.bulk_nodes.(0)
    else
      Array.fold_left (fun acc n -> acc +. Circuit.temperature sol n) 0. net.Model_a.tsv_nodes
      /. float_of_int nvias
  in
  (max_rise, via_rise)

let solve ?coeffs ?(conductor = Parasitics.copper) ?(tol = 1e-9) ?(max_iter = 100)
    ~sink_temperature_k ~current_rms stack =
  if current_rms < 0. then invalid_arg "Joule.solve: negative current";
  let rs = Resistances.of_stack ?coeffs stack in
  let tsv = stack.Stack.tsv in
  let length = Stack.tsv_length stack in
  let radius = tsv.Tsv.radius in
  let baseline_rise, baseline_via = solve_with_joule rs stack 0. in
  let rec fixed_point iter via_temp prev_rise =
    let r_dc = Parasitics.dc_resistance conductor ~radius ~length ~temp_k:via_temp in
    let power = current_rms *. current_rms *. r_dc in
    let rise, via_rise = solve_with_joule rs stack power in
    if Float.abs (rise -. prev_rise) <= tol then
      {
        baseline_rise;
        rise;
        via_temperature = sink_temperature_k +. via_rise;
        joule_power = power;
        resistance = r_dc;
        iterations = iter;
      }
    else if iter >= max_iter then failwith "Joule.solve: fixed point did not settle"
    else fixed_point (iter + 1) (sink_temperature_k +. via_rise) rise
  in
  fixed_point 1 (sink_temperature_k +. baseline_via) Float.neg_infinity

let max_current_for_rise ?coeffs ?conductor ~sink_temperature_k ~budget stack =
  let rise i = (solve ?coeffs ?conductor ~sink_temperature_k ~current_rms:i stack).rise in
  let baseline = rise 0. in
  if baseline > budget then
    invalid_arg "Joule.max_current_for_rise: baseline already exceeds the budget";
  (* bracket: double the current until the budget is crossed *)
  let rec upper i =
    if rise i > budget then i
    else if i > 1e4 then invalid_arg "Joule.max_current_for_rise: budget unreachable below 10 kA"
    else upper (2. *. i)
  in
  let hi = upper 0.1 in
  Optimize.bisect ~tol:1e-6 (fun i -> rise i -. budget) 0. hi
