(** Electro-thermal coupling: Joule self-heating of a current-carrying
    TSV inside the paper's thermal network (extension).

    A signal or power TSV with the same geometry as a TTSV dissipates
    I²R(T) along its length; that heat enters the Model A network at the
    via nodes, raises the via temperature, which raises the copper
    resistivity, which raises the dissipation — a fixed point this module
    resolves by damped iteration.

    The result quantifies when a power-delivery TSV stops being a free
    thermal via and becomes a heat source of its own. *)

type result = {
  baseline_rise : float;  (** Max ΔT with no current, K *)
  rise : float;  (** Max ΔT at the converged operating point, K *)
  via_temperature : float;  (** mean via-node absolute temperature, K *)
  joule_power : float;  (** converged dissipation, W *)
  resistance : float;  (** converged via DC resistance, Ω *)
  iterations : int;
}

val solve :
  ?coeffs:Ttsv_core.Coefficients.t ->
  ?conductor:Parasitics.conductor ->
  ?tol:float ->
  ?max_iter:int ->
  sink_temperature_k:float ->
  current_rms:float ->
  Ttsv_geometry.Stack.t ->
  result
(** [solve ~sink_temperature_k ~current_rms stack] couples the stack's
    TTSV (treated as the current-carrying via) with Model A.  The Joule
    heat is distributed over the via nodes proportionally to each
    plane's span.  [conductor] defaults to {!Parasitics.copper}; [tol]
    (default 1e-9 K on the rise) and [max_iter] (default 100, [Failure]
    beyond) control the fixed point.  [current_rms = 0] returns the
    baseline. *)

val max_current_for_rise :
  ?coeffs:Ttsv_core.Coefficients.t ->
  ?conductor:Parasitics.conductor ->
  sink_temperature_k:float ->
  budget:float ->
  Ttsv_geometry.Stack.t ->
  float
(** [max_current_for_rise ~sink_temperature_k ~budget stack] is the RMS
    current at which the coupled Max ΔT reaches [budget] (bisection;
    raises [Invalid_argument] if the baseline already exceeds the
    budget). *)
