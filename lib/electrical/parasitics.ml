type conductor = { resistivity_293k : float; temperature_coeff : float }

let copper = { resistivity_293k = 1.72e-8; temperature_coeff = 3.93e-3 }
let tungsten = { resistivity_293k = 5.28e-8; temperature_coeff = 4.5e-3 }

let mu0 = 4e-7 *. Float.pi
let epsilon0 = 8.8541878128e-12

let resistivity c ~temp_k =
  let rho = c.resistivity_293k *. (1. +. (c.temperature_coeff *. (temp_k -. 293.15))) in
  Float.max rho (0.1 *. c.resistivity_293k)

let check_geometry name ~radius ~length =
  if radius <= 0. || length <= 0. then
    invalid_arg ("Parasitics." ^ name ^ ": radius and length must be positive")

let dc_resistance c ~radius ~length ~temp_k =
  check_geometry "dc_resistance" ~radius ~length;
  resistivity c ~temp_k *. length /. (Float.pi *. radius *. radius)

let skin_depth c ~frequency ~temp_k =
  if frequency <= 0. then invalid_arg "Parasitics.skin_depth: frequency must be positive";
  sqrt (2. *. resistivity c ~temp_k /. (2. *. Float.pi *. frequency *. mu0))

let ac_resistance c ~radius ~length ~frequency ~temp_k =
  check_geometry "ac_resistance" ~radius ~length;
  let dc = dc_resistance c ~radius ~length ~temp_k in
  let delta = skin_depth c ~frequency ~temp_k in
  if delta >= radius then dc
  else begin
    let inner = radius -. delta in
    let area = Float.pi *. ((radius *. radius) -. (inner *. inner)) in
    Float.max dc (resistivity c ~temp_k *. length /. area)
  end

let oxide_capacitance ?(epsilon_r = 3.9) ~radius ~liner_thickness ~length () =
  check_geometry "oxide_capacitance" ~radius ~length;
  if liner_thickness <= 0. then
    invalid_arg "Parasitics.oxide_capacitance: liner thickness must be positive";
  2. *. Float.pi *. epsilon0 *. epsilon_r *. length
  /. log ((radius +. liner_thickness) /. radius)

let self_inductance ~radius ~length =
  check_geometry "self_inductance" ~radius ~length;
  if length <= radius then
    invalid_arg "Parasitics.self_inductance: needs length > radius";
  mu0 *. length /. (2. *. Float.pi) *. (log (2. *. length /. radius) -. 0.75)

let rc_delay ~resistance ~capacitance =
  if resistance < 0. || capacitance < 0. then
    invalid_arg "Parasitics.rc_delay: negative inputs";
  0.69 *. resistance *. capacitance

let joule_power c ~radius ~length ~temp_k ~current_rms =
  current_rms *. current_rms *. dc_resistance c ~radius ~length ~temp_k
