(* Cooling design: close the loop from the die to the ambient.  The paper's
   models give the on-die rise above the heat sink; a real design adds the
   package — heat spreader, thermal interface, sink-to-air — and must keep
   the junction below a limit.  This example sizes that chain with the
   spreading-resistance primitive and the package model.

     dune exec examples/cooling_design.exe *)

module Units = Ttsv_physics.Units
module Stack = Ttsv_geometry.Stack
module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Package = Ttsv_core.Package
module Spreading = Ttsv_core.Spreading

let junction_limit = 85. (* C *)
let ambient = 35. (* C, worst-case enclosure *)

let () =
  (* the DRAM-uP system of section IV-E: 84 W total, TTSV-cooled stack *)
  let stack, count = Params.case_study () in
  let cell = Model_a.solve ~coeffs:Params.case_study_coeffs stack in
  let die_rise = Model_a.max_rise cell in
  let total_power = 84. in
  Format.printf "die: %d TTSVs, on-die rise above the sink surface = %.1f K at %g W@.@." count
    die_rise total_power;

  (* spreader: the 10 mm x 10 mm die feeds a 40 mm x 40 mm copper spreader
     2 mm thick; its constriction resistance comes from the Lee model
     (areas mapped to equivalent-radius discs) *)
  let die_radius = sqrt (Units.mm 10. *. Units.mm 10. /. Float.pi) in
  let spreader_radius = sqrt (Units.mm 40. *. Units.mm 40. /. Float.pi) in
  let r_spread =
    Spreading.resistance ~source_radius:die_radius ~cell_radius:spreader_radius
      ~thickness:(Units.mm 2.) ~conductivity:400. ()
  in
  let factor =
    Spreading.spreading_factor ~source_radius:die_radius ~cell_radius:spreader_radius
      ~thickness:(Units.mm 2.) ~conductivity:400.
  in
  Format.printf "copper spreader: R = %.4f K/W (constriction factor %.1fx over 1-D)@." r_spread
    factor;

  (* how good must the heat sink be? *)
  let pkg0 = Package.make ~ambient ~resistance:r_spread () in
  let r_sink_max =
    Package.required_resistance pkg0 ~total_power ~model_rise:die_rise ~junction_limit
    -. r_spread
  in
  Format.printf "junction limit %.0f C at %.0f C ambient -> sink-to-air must beat %.3f K/W@.@."
    junction_limit ambient r_sink_max;

  (* check a candidate sink and report the full budget *)
  let candidates = [ ("passive extrusion", 0.9); ("active tower", 0.35); ("liquid loop", 0.12) ] in
  Format.printf "%-20s %12s %12s %8s@." "sink" "R [K/W]" "junction [C]" "meets";
  List.iter
    (fun (label, r_sink) ->
      let pkg = Package.of_parts ~ambient ~spreader:r_spread ~sink_to_air:r_sink () in
      let tj = Package.junction_temperature pkg ~total_power ~model_rise:die_rise in
      Format.printf "%-20s %12.3f %12.1f %8s@." label r_sink tj
        (if tj <= junction_limit then "yes" else "no"))
    candidates;

  (* and the headroom question DVFS asks: max sustainable power *)
  let pkg = Package.of_parts ~ambient ~spreader:r_spread ~sink_to_air:0.35 () in
  let rise_per_watt = die_rise /. total_power in
  let p_max =
    Package.max_power_for_junction pkg ~model_rise_per_watt:rise_per_watt ~junction_limit
  in
  Format.printf "@.with the active tower, the stack sustains %.1f W before hitting %.0f C@."
    p_max junction_limit
