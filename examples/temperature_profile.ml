(* Vertical temperature profiles: Model B's distributed bulk and TTSV
   columns against the finite-volume axis profile — a view no lumped model
   can give, and the reason the paper's Fig. 1(b) shows three heat paths.

     dune exec examples/temperature_profile.exe *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Model_b = Ttsv_core.Model_b
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Interp = Ttsv_numerics.Interp

let () =
  let stack = Params.block () in
  let b = Model_b.solve_n stack 200 in

  (* the FV axis profile starts at the heat sink (z=0); Model B's profile
     starts at the TSV foot, tSi1 - lext above the sink *)
  let foot = Units.um (500. -. 1.) in
  let fv = Solver.solve (Problem.of_stack ~resolution:2 stack) in
  let fv_axis = Solver.axis_profile fv in
  let fv_interp = Interp.of_points (Array.to_list (Array.map (fun (z, t) -> (z, t)) fv_axis)) in

  let metal = Interp.of_points (Array.to_list b.Model_b.tsv_profile) in

  Format.printf "z above TSV foot [um] | bulk column [K] | TTSV metal [K] | FV axis [K]@.";
  Format.printf "----------------------+-----------------+----------------+-------------@.";
  Array.iter
    (fun (z, t_bulk) ->
      let t_metal = Interp.eval metal z in
      let t_fv = Interp.eval fv_interp (z +. foot) in
      Format.printf "%21.1f | %15.3f | %14.3f | %11.3f@." (Units.to_um z) t_bulk t_metal t_fv)
    (Array.init 12 (fun i ->
         let n = Array.length b.Model_b.bulk_profile in
         b.Model_b.bulk_profile.(i * (n - 1) / 11)));

  (* where does the lateral heat enter the via? the rung flow is largest
     where bulk and metal differ most *)
  let max_gap = ref (0., 0.) in
  Array.iter
    (fun (z, t_bulk) ->
      let gap = t_bulk -. Interp.eval metal z in
      if gap > snd !max_gap then max_gap := (z, gap))
    b.Model_b.bulk_profile;
  let z_star, gap = !max_gap in
  Format.printf
    "@.largest bulk-to-metal temperature gap: %.2f K at z = %.1f um above the TSV foot —@."
    gap (Units.to_um z_star);
  Format.printf "that is where the liner conducts the most lateral heat into the via.@."
