(* Transient extension: how fast does the unit cell heat up after a power
   step, and what does a duty-cycled (DVFS-style) workload look like?

     dune exec examples/transient_response.exe *)

module Params = Ttsv_core.Params
module Model_a = Ttsv_core.Model_a
module Transient = Ttsv_core.Transient
module Coefficients = Ttsv_core.Coefficients

let bar width value scale =
  let n = Stdlib.max 0 (Stdlib.min width (int_of_float (value /. scale *. float_of_int width))) in
  String.make n '#'

let () =
  let stack = Params.block () in
  let coeffs = Coefficients.paper_block in

  (* 1. step response *)
  let step = Transient.solve ~coeffs stack ~dt:2e-4 ~duration:0.04 in
  let steady = Model_a.max_rise step.Transient.steady in
  Format.printf "power step at t=0; steady max dT = %.2f K@.@." steady;
  let n = Array.length step.Transient.times in
  let stride = Stdlib.max 1 (n / 25) in
  let i = ref 0 in
  while !i < n do
    Format.printf "%8.2f ms %8.3f K |%s@."
      (step.Transient.times.(!i) *. 1000.)
      step.Transient.max_rise.(!i)
      (bar 40 step.Transient.max_rise.(!i) steady);
    i := !i + stride
  done;
  Format.printf "@.thermal time constant (63%% of steady): %.3f ms@.@."
    (Transient.time_constant step *. 1000.);

  (* 2. duty-cycled workload: 8 ms on, 8 ms at 20% *)
  let period = 16e-3 in
  let power t = if Float.rem t period < period /. 2. then 1. else 0.2 in
  let pulsed = Transient.solve ~coeffs ~power stack ~dt:2e-4 ~duration:0.08 in
  let peak = Array.fold_left Float.max 0. pulsed.Transient.max_rise in
  let last = pulsed.Transient.max_rise.(Array.length pulsed.Transient.max_rise - 1) in
  Format.printf "duty-cycled workload (50%% duty, 5x power swing):@.";
  Format.printf "  peak dT %.2f K vs steady-at-full-power %.2f K -> %.0f%% thermal headroom \
                 recovered@."
    peak steady
    (100. *. (steady -. peak) /. steady);
  Format.printf "  dT at the end of the trace: %.2f K@." last
