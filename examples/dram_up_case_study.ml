(* The paper's section IV-E workload through the public API: a 10 mm x 10 mm
   3-D system with a processor plane on the heat sink and two DRAM planes
   above it, cooled by a uniform 0.5% -density array of 30 um TTSVs.

     dune exec examples/dram_up_case_study.exe *)

module Units = Ttsv_physics.Units
module Tsv = Ttsv_geometry.Tsv
module Plane = Ttsv_geometry.Plane
module Stack = Ttsv_geometry.Stack
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Coefficients = Ttsv_core.Coefficients
module Problem = Ttsv_fem.Problem
module Solver = Ttsv_fem.Solver
module Calibrate = Ttsv_core.Calibrate

let chip_area = Units.mm 10. *. Units.mm 10.
let plane_powers = [ ("processor", 70.); ("DRAM-0", 7.); ("DRAM-1", 7.) ]

let () =
  let tsv =
    Tsv.make ~radius:(Units.um 30.) ~liner_thickness:(Units.um 1.) ~extension:(Units.um 1.) ()
  in
  (* size the TTSV array: 0.5% of the chip area as via metal, one via per
     unit cell *)
  let count, cell_area = Stack.cells_for_density ~footprint_total:chip_area ~density:0.005 ~tsv in
  Format.printf "TTSV array: %d vias of r=30 um -> unit cell %.4g mm^2@.@." count
    (cell_area *. 1e6);

  (* express each plane's total wattage as a device-layer density *)
  let t_device = Units.um 1. in
  let plane ~watts ~first =
    Plane.make ~t_substrate:(Units.um 300.) ~t_ild:(Units.um 20.)
      ~t_bond:(Units.um (if first then 0. else 10.))
      ~t_device
      ~device_power_density:(watts /. (chip_area *. t_device))
      ()
  in
  let stack =
    Stack.make ~footprint:cell_area
      ~planes:
        (List.mapi (fun i (_, watts) -> plane ~watts ~first:(i = 0)) plane_powers)
      ~tsv ()
  in

  (* the paper calibrates Model A on a block of the investigated circuit;
     we do the same against the bundled finite-volume solver *)
  let reference = Solver.max_rise (Solver.solve (Problem.of_stack ~resolution:2 stack)) in
  let fit = Calibrate.fit [ { Calibrate.stack; reference } ] in
  Format.printf "calibrated on this geometry: %a@.@." Coefficients.pp fit.Calibrate.coefficients;

  let a = Model_a.max_rise (Model_a.solve ~coeffs:fit.Calibrate.coefficients stack) in
  let b = Model_b.max_rise (Model_b.solve_n stack 1000) in
  let d = Model_1d.max_rise (Model_1d.solve stack) in
  Format.printf "Model A        : %.1f K   (paper: 12.8 C)@." a;
  Format.printf "Model B(1000)  : %.1f K   (paper: 13.9 C)@." b;
  Format.printf "FV reference   : %.1f K   (paper FEM: 12 C)@." reference;
  Format.printf "Model 1D       : %.1f K   (paper: 20 C)@.@." d;
  Format.printf
    "the 1-D model overestimates by %.0f%% — sizing the TTSV array with it@.would waste \
     silicon on vias the circuit does not need.@."
    (100. *. (d -. reference) /. reference)
