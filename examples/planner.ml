(* TTSV planning: the use case that motivates the paper's models.  Given a
   temperature budget, search the (radius, count) design space for the array
   that meets the budget with the least silicon spent on vias — TTSVs are "a
   critical resource in 3-D ICs" (paper, section V).

   The closed-form three-plane solution makes each candidate evaluation a
   few hundred nanoseconds, so exhaustive scanning is practical: exactly the
   payoff the paper promises over FEM-in-the-loop planning.

     dune exec examples/planner.exe *)

module Units = Ttsv_physics.Units
module Tsv = Ttsv_geometry.Tsv
module Plane = Ttsv_geometry.Plane
module Stack = Ttsv_geometry.Stack
module Closed_form = Ttsv_core.Closed_form
module Coefficients = Ttsv_core.Coefficients

let chip_area = Units.mm 5. *. Units.mm 5.
let budget_k = 15. (* max allowed rise above the heat sink *)
let plane_watts = [| 20.; 4.; 4. |]

(* one uniform unit cell of the candidate array *)
let stack_for ~radius_um ~count =
  let tsv =
    Tsv.make ~radius:(Units.um radius_um) ~liner_thickness:(Units.um 1.)
      ~extension:(Units.um 1.) ()
  in
  let cell_area = chip_area /. float_of_int count in
  if Tsv.occupied_area tsv >= cell_area then None
  else begin
    let t_device = Units.um 1. in
    let plane ~watts ~first =
      Plane.make ~t_substrate:(Units.um 200.) ~t_ild:(Units.um 10.)
        ~t_bond:(Units.um (if first then 0. else 5.))
        ~t_device
        ~device_power_density:(watts /. (chip_area *. t_device))
        ()
    in
    Some
      (Stack.make ~footprint:cell_area
         ~planes:
           [
             plane ~watts:plane_watts.(0) ~first:true;
             plane ~watts:plane_watts.(1) ~first:false;
             plane ~watts:plane_watts.(2) ~first:false;
           ]
         ~tsv ())
  end

let rise stack = Closed_form.max_rise (Closed_form.of_stack ~coeffs:Coefficients.paper_block stack)

let () =
  Format.printf "budget: max dT <= %.1f K on a %.0f mm^2 three-plane stack (%.0f W total)@.@."
    budget_k (chip_area *. 1e6)
    (Array.fold_left ( +. ) 0. plane_watts);
  let radii = [ 2.; 3.; 5.; 8.; 10.; 15.; 20.; 30. ] in
  let counts = [ 50; 100; 200; 400; 800; 1600; 3200; 6400; 12800 ] in
  let evaluations = ref 0 in
  let best = ref None in
  Format.printf "%10s %10s %14s %12s %10s@." "r [um]" "count" "metal [mm^2]" "dT [K]" "meets";
  List.iter
    (fun radius_um ->
      List.iter
        (fun count ->
          match stack_for ~radius_um ~count with
          | None -> ()
          | Some stack ->
            incr evaluations;
            let dt = rise stack in
            let metal =
              float_of_int count *. Float.pi *. Units.um radius_um *. Units.um radius_um
            in
            let ok = dt <= budget_k in
            (* report a sparse sample of the space plus every feasible point *)
            if ok || count >= 3200 then
              Format.printf "%10.1f %10d %14.4f %12.2f %10s@." radius_um count (metal *. 1e6)
                dt
                (if ok then "yes" else "no");
            if ok then
              match !best with
              | Some (_, _, m) when m <= metal -> ()
              | _ -> best := Some (radius_um, count, metal))
        counts)
    radii;
  Format.printf "@.%d candidate arrays evaluated through the closed form@." !evaluations;
  match !best with
  | Some (r, c, metal) ->
    Format.printf "cheapest feasible array: %d TTSVs of r=%.1f um (%.4f mm^2 of via metal, \
                   %.2f%% of the chip)@."
      c r (metal *. 1e6)
      (100. *. metal /. chip_area)
  | None -> Format.printf "no candidate meets the budget - enlarge the search space@."
