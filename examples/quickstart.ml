(* Quickstart: build a three-plane 3-D IC unit cell with one thermal TSV and
   compare every model on it.

     dune exec examples/quickstart.exe *)

module Units = Ttsv_physics.Units
module Tsv = Ttsv_geometry.Tsv
module Plane = Ttsv_geometry.Plane
module Stack = Ttsv_geometry.Stack
module Model_a = Ttsv_core.Model_a
module Model_b = Ttsv_core.Model_b
module Model_1d = Ttsv_core.Model_1d
module Coefficients = Ttsv_core.Coefficients

let () =
  (* 1. describe the TTSV: a 5 um copper via with a 1 um SiO2 liner that
        dips 1 um into the first substrate *)
  let tsv =
    Tsv.make ~radius:(Units.um 5.) ~liner_thickness:(Units.um 1.) ~extension:(Units.um 1.) ()
  in

  (* 2. describe the planes, heat-sink side first; each has a silicon
        substrate, an ILD/BEOL layer, and (above the first) a bonding layer.
        Power: 700 W/mm^3 in a 1 um device layer, 70 W/mm^3 in the ILD. *)
  let plane ~first =
    Plane.make
      ~t_substrate:(Units.um (if first then 500. else 45.))
      ~t_ild:(Units.um 4.)
      ~t_bond:(Units.um (if first then 0. else 1.))
      ~t_device:(Units.um 1.)
      ~device_power_density:(Units.w_per_mm3 700.)
      ~ild_power_density:(Units.w_per_mm3 70.) ()
  in

  (* 3. a 100 um x 100 um unit cell holding that TTSV *)
  let stack =
    Stack.make
      ~footprint:(Units.um2 (100. *. 100.))
      ~planes:[ plane ~first:true; plane ~first:false; plane ~first:false ]
      ~tsv ()
  in

  Format.printf "%a@.@." Stack.pp stack;
  Format.printf "heat per plane: %a W@.@." Ttsv_numerics.Vec.pp (Stack.heat_inputs stack);

  (* 4. Model A (lumped network, with the paper's fitted coefficients) *)
  let a = Model_a.solve ~coeffs:Coefficients.paper_block stack in
  Format.printf "Model A      : max dT = %.2f K (T0 %.2f, planes %.2f / %.2f / %.2f)@."
    (Model_a.max_rise a) a.Model_a.t0 a.Model_a.bulk.(0) a.Model_a.bulk.(1) a.Model_a.bulk.(2);

  (* 5. Model B (distributed, no fitting coefficients) at 100 segments *)
  let b = Model_b.solve_n stack 100 in
  Format.printf "Model B(100) : max dT = %.2f K (%d unknowns solved)@." (Model_b.max_rise b)
    b.Model_b.nodes;

  (* 6. the traditional 1-D model the paper improves upon *)
  let d = Model_1d.solve stack in
  Format.printf "Model 1D     : max dT = %.2f K  <- overestimates: no lateral liner path@."
    (Model_1d.max_rise d);

  (* 7. how much heat does the via actually move? *)
  Format.printf "@.heat delivered to the sink through the TTSV: %.2f%% of %.1f mW@."
    (100. *. a.Model_a.tsv_heat /. Stack.total_heat stack)
    (1000. *. Stack.total_heat stack)
