(* Full-chip extension: a 4 mm x 4 mm three-plane stack with a processor
   hotspot, analyzed with the tile-level compact model, then cooled by the
   greedy TTSV allocator until it meets a temperature budget.

     dune exec examples/hotspot_floorplan.exe *)

module Units = Ttsv_physics.Units
module Plane = Ttsv_geometry.Plane
module Tsv = Ttsv_geometry.Tsv
module Power_map = Ttsv_chip.Power_map
module Chip_model = Ttsv_chip.Chip_model
module Allocation = Ttsv_chip.Allocation

let nx = 12
let ny = 12

let () =
  let tsv =
    Tsv.make ~radius:(Units.um 10.) ~liner_thickness:(Units.um 1.) ~extension:(Units.um 1.) ()
  in
  let plane ~first =
    Plane.make
      ~t_substrate:(Units.um (if first then 300. else 50.))
      ~t_ild:(Units.um 6.)
      ~t_bond:(Units.um (if first then 0. else 2.))
      ()
  in
  let chip =
    Chip_model.make ~width:(Units.mm 4.) ~height:(Units.mm 4.) ~nx ~ny
      ~planes:[ plane ~first:true; plane ~first:false; plane ~first:false ]
      ~tsv ()
  in

  (* floorplan: 6 W of background logic per plane; an 8 W core block in the
     top plane's north-east corner, and a 4 W memory controller mid-west *)
  let background = Power_map.uniform ~nx ~ny ~total:6. in
  let top =
    Power_map.add_hotspot
      (Power_map.add_hotspot background ~x0:8 ~y0:8 ~x1:10 ~y1:10 ~watts:8.)
      ~x0:1 ~y0:5 ~x1:2 ~y1:7 ~watts:4.
  in
  let power = [ background; background; top ] in

  let bare = Chip_model.solve chip (Chip_model.uniform_density chip 0.) power in
  Format.printf "without TTSVs: max dT = %.2f K at plane %d tile (%d,%d)@.@."
    bare.Chip_model.max_rise
    (let p, _, _ = bare.Chip_model.hottest in
     p + 1)
    (let _, x, _ = bare.Chip_model.hottest in
     x)
    (let _, _, y = bare.Chip_model.hottest in
     y);
  Format.printf "top-plane temperature field (0-9 scaled to max):@.%t@.@."
    (Chip_model.pp_plane bare ~plane:2);

  let budget = bare.Chip_model.max_rise *. 0.75 in
  Format.printf "allocating TTSVs for a budget of %.2f K ...@.@." budget;
  let opts = Allocation.default_options ~budget in
  let out = Allocation.allocate chip power { opts with step = 0.01; max_density = 0.15 } in

  Format.printf "feasible: %b after %d iterations@." out.Allocation.feasible
    out.Allocation.iterations;
  Format.printf "max dT: %.2f K (budget %.2f K)@." out.Allocation.final.Chip_model.max_rise
    budget;
  Format.printf "via metal spent: %.4f mm^2 (%.2f%% of the chip)@.@."
    (out.Allocation.metal_area *. 1e6)
    (100. *. out.Allocation.metal_area /. (Units.mm 4. *. Units.mm 4.));
  Format.printf "TTSV density map (vias go where the heat is):@.%t@.@."
    (Allocation.pp_densities chip out.Allocation.densities);
  Format.printf "top-plane field after allocation:@.%t@."
    (Chip_model.pp_plane out.Allocation.final ~plane:2)
