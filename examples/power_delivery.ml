(* Electro-thermal co-analysis: when a power-delivery TSV carries real
   current, its I^2 R(T) dissipation turns the cooling via into a heater.
   This example sweeps the current, resolves the coupled operating point,
   and finds the maximum current a thermal budget allows — alongside the
   signal-integrity numbers (R, C, L, delay) a TSV datasheet would quote.

     dune exec examples/power_delivery.exe *)

module Units = Ttsv_physics.Units
module Params = Ttsv_core.Params
module Stack = Ttsv_geometry.Stack
module Parasitics = Ttsv_electrical.Parasitics
module Joule = Ttsv_electrical.Joule

let sink_k = Units.kelvin_of_celsius 27.

let () =
  let stack = Params.block () in
  let length = Stack.tsv_length stack in
  let radius = stack.Stack.tsv.Ttsv_geometry.Tsv.radius in

  (* datasheet corner: parasitics at 100 C *)
  let temp_k = Units.kelvin_of_celsius 100. in
  let r_dc = Parasitics.dc_resistance Parasitics.copper ~radius ~length ~temp_k in
  let r_5g =
    Parasitics.ac_resistance Parasitics.copper ~radius ~length ~frequency:5e9 ~temp_k
  in
  let c_ox =
    Parasitics.oxide_capacitance ~radius
      ~liner_thickness:stack.Stack.tsv.Ttsv_geometry.Tsv.liner_thickness ~length ()
  in
  let l_self = Parasitics.self_inductance ~radius ~length in
  Format.printf "TSV parasitics (r=%.0f um, l=%.0f um, 100 C):@." (Units.to_um radius)
    (Units.to_um length);
  Format.printf "  R(dc)    = %.2f mOhm@." (r_dc *. 1e3);
  Format.printf "  R(5 GHz) = %.2f mOhm (skin effect)@." (r_5g *. 1e3);
  Format.printf "  C(liner) = %.1f fF@." (c_ox *. 1e15);
  Format.printf "  L(self)  = %.1f pH@." (l_self *. 1e12);
  Format.printf "  RC delay = %.3f fs@.@." (Parasitics.rc_delay ~resistance:r_dc ~capacitance:c_ox *. 1e15);

  (* coupled electro-thermal sweep *)
  Format.printf "%10s %12s %14s %14s %12s@." "I [A]" "P [mW]" "via T [C]" "max dT [K]"
    "vs no I";
  List.iter
    (fun i ->
      let r = Joule.solve ~sink_temperature_k:sink_k ~current_rms:i stack in
      Format.printf "%10.2f %12.3f %14.2f %14.3f %+11.3f@." i
        (r.Joule.joule_power *. 1e3)
        (Units.celsius_of_kelvin r.Joule.via_temperature)
        r.Joule.rise
        (r.Joule.rise -. r.Joule.baseline_rise))
    [ 0.; 0.25; 0.5; 1.; 1.5; 2. ];

  let baseline = (Joule.solve ~sink_temperature_k:sink_k ~current_rms:0. stack).Joule.rise in
  let budget = baseline +. 3. in
  let imax = Joule.max_current_for_rise ~sink_temperature_k:sink_k ~budget stack in
  Format.printf "@.a +3 K self-heating budget caps the via at %.2f A rms@." imax
